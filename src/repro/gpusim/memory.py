"""Global-memory coalescing and shared-memory bank-conflict analysis.

These are the two memory effects the paper's optimization section
(§III.D) is built around:

* Global memory moves in 128-byte transactions; a warp access costs as
  many transactions as distinct segments its 32 lane addresses touch.
  "Coalesced accesses that fit into a block can be done by just one
  memory transaction."
* Shared memory has 32 banks; lanes hitting distinct words in the same
  bank serialize.  The conflict degree of a warp access is the maximum
  number of distinct words mapped to one bank.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require_range

__all__ = [
    "bank_conflict_degree",
    "coalesced_transactions",
    "expected_random_conflict_degree",
    "strided_transactions",
]


def coalesced_transactions(addresses: np.ndarray, segment: int = 128) -> int:
    """Number of ``segment``-byte transactions for one warp access.

    ``addresses`` are the byte addresses the active lanes touch.  The
    count is the number of distinct aligned segments — 1 for a fully
    coalesced contiguous access, up to 32 for a scatter.
    """
    require_range(segment, 1, 1 << 20, "segment")
    addr = np.asarray(addresses, dtype=np.int64)
    if addr.size == 0:
        return 0
    if np.any(addr < 0):
        raise ValueError("negative byte address")
    return int(np.unique(addr // segment).size)


def strided_transactions(base: int, stride: int, lanes: int,
                         segment: int = 128) -> int:
    """Transactions for the common strided pattern ``base + l*stride``."""
    lane_addr = base + stride * np.arange(lanes, dtype=np.int64)
    return coalesced_transactions(lane_addr, segment)


def bank_conflict_degree(addresses: np.ndarray, banks: int = 32,
                         word_bytes: int = 4) -> int:
    """Serialization factor of one warp's shared-memory access.

    Lanes reading the *same* word broadcast (no conflict); lanes
    reading *different* words in the same bank serialize.  The degree
    is the max distinct-word count over banks — 1 means conflict-free.
    """
    addr = np.asarray(addresses, dtype=np.int64)
    if addr.size == 0:
        return 0
    words = np.unique(addr // word_bytes)
    bank_of = words % banks
    return int(np.bincount(bank_of, minlength=banks).max())


def expected_random_conflict_degree(lanes: int = 32, banks: int = 32,
                                    trials: int = 4096,
                                    seed: int = 0x5EED) -> float:
    """Mean conflict degree of uncorrelated lane addresses.

    CULZSS V1's threads drift apart (each compresses its own chunk at
    its own pace), so their shared-buffer accesses behave like random
    words: the expected max-bank-load of 32 balls in 32 bins, ≈3.4.
    Deterministic Monte-Carlo (fixed seed) so the timing model is
    reproducible; used as V1's average conflict degree, versus 1.0 for
    V2's staggered conflict-free layout ("setting each thread with an
    offset of 4 characters (32 bytes) distance", §III.B.2).
    """
    rng = np.random.default_rng(seed)
    draws = rng.integers(0, banks, size=(trials, lanes))
    # per-trial max bin load, vectorized: sort rows, count run lengths
    degrees = np.zeros(trials, dtype=np.int64)
    sorted_draws = np.sort(draws, axis=1)
    for t in range(trials):  # trials is small and this runs once
        _, counts = np.unique(sorted_draws[t], return_counts=True)
        degrees[t] = counts.max()
    return float(degrees.mean())
