"""Multi-GPU splitting — the paper's §VII negative result.

"Although we could not receive any gains in our attempt to use multiple
GPUs in a distributed fashion on a machine … we suspect the division of
the GPUs by threads introduced thread overhead."

The model captures exactly the two effects that produce that outcome on
a 2011 workstation: (a) all devices share one PCIe root, so transfers
serialize; (b) each device needs a dedicated host driver thread whose
creation/synchronization overhead is charged per device.  Kernel time
divides across devices; transfer time and thread overhead do not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.spec import DeviceSpec
from repro.util.validation import require_range

__all__ = ["MultiGpuRun", "simulate_multi_gpu"]

#: Host-thread creation + per-chunk synchronization cost per device per
#: dispatched buffer; the magnitude of pthread create/join plus CUDA
#: context switching on 2011-era drivers.
HOST_THREAD_OVERHEAD_S = 2.0e-3


@dataclass
class MultiGpuRun:
    """Modeled end-to-end time of an input split over ``devices`` GPUs."""

    devices: int
    kernel_seconds: float
    transfer_seconds: float
    thread_overhead_seconds: float

    @property
    def total_seconds(self) -> float:
        return (self.kernel_seconds + self.transfer_seconds
                + self.thread_overhead_seconds)


def simulate_multi_gpu(spec: DeviceSpec, single_device_kernel_s: float,
                       single_device_transfer_s: float, devices: int,
                       dispatches_per_device: int = 1) -> MultiGpuRun:
    """Split a run whose 1-GPU kernel/transfer times are known.

    Kernel work is perfectly divisible (chunks are independent);
    transfers share one PCIe link and therefore do not shrink; every
    device adds host-thread overhead per dispatched buffer.
    """
    require_range(devices, 1, 64, "devices")
    require_range(dispatches_per_device, 1, 1 << 20, "dispatches_per_device")
    overhead = (0.0 if devices == 1
                else devices * dispatches_per_device * HOST_THREAD_OVERHEAD_S)
    return MultiGpuRun(
        devices=devices,
        kernel_seconds=single_device_kernel_s / devices,
        transfer_seconds=single_device_transfer_s,
        thread_overhead_seconds=overhead,
    )
