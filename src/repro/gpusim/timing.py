"""Cycle→seconds conversion and host↔device transfer costs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.spec import DeviceSpec
from repro.util.validation import require_range

__all__ = ["KernelTiming", "transfer_time"]


@dataclass
class KernelTiming:
    """Result of one simulated kernel launch."""

    name: str
    cycles: float
    seconds: float
    breakdown: dict[str, float] = field(default_factory=dict)

    def scaled(self, factor: float) -> "KernelTiming":
        """Same kernel on ``factor``× the data (linear work scaling)."""
        return KernelTiming(
            name=self.name,
            cycles=self.cycles * factor,
            seconds=self.seconds * factor,
            breakdown={k: v * factor for k, v in self.breakdown.items()},
        )


def transfer_time(spec: DeviceSpec, nbytes: int | float) -> float:
    """PCIe host↔device copy time: latency + bytes/bandwidth.

    The paper's in-memory API pays this on both sides of every kernel
    ("the memory needs to be explicitly copied to the GPU memory").
    """
    require_range(nbytes, 0, float("inf"), "nbytes")
    if nbytes == 0:
        return 0.0
    return spec.pcie_latency_s + nbytes / spec.pcie_bandwidth_bps
