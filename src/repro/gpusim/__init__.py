"""Fermi-class GPU execution/timing simulator.

The paper's testbed is a GeForce GTX 480 running CUDA 3.2.  This
package is the substitution substrate for that hardware: a statistics-
level simulator that takes *exact per-thread work counts* (byte
comparisons, buffer traffic) from the functional CULZSS kernels and
turns them into modeled kernel times using the documented Fermi
microarchitecture quantities — SM/warp geometry, lockstep warp
execution (warp time = max over lanes), 128-byte coalesced global
transactions, 32-bank shared memory with conflict serialization,
occupancy-limited block residency, and PCIe transfer costs.

It is *not* a cycle-accurate simulator: it is the minimal model in
which the paper's performance effects (§III.D, §V) are first-class:

* coalesced vs. scattered global access (V2 vs. V1 loads);
* shared-memory bank conflicts (V1's per-thread buffer stride vs.
  V2's staggered offsets);
* warp divergence (V1's variable per-chunk token counts);
* occupancy collapse when per-block shared buffers exceed 16 KB
  (the >128-threads/block and >128-byte-window regressions);
* host↔device transfer overhead and CPU/GPU overlap.
"""

from repro.gpusim.kernel import BlockCost, KernelLaunch, launch_kernel
from repro.gpusim.memory import (
    bank_conflict_degree,
    coalesced_transactions,
    expected_random_conflict_degree,
)
from repro.gpusim.multi import MultiGpuRun, simulate_multi_gpu
from repro.gpusim.profiler import GpuProfile, PhaseTime
from repro.gpusim.scheduler import Occupancy, occupancy
from repro.gpusim.spec import FERMI_GTX480, DeviceSpec, detect_devices
from repro.gpusim.timing import KernelTiming, transfer_time

__all__ = [
    "BlockCost",
    "DeviceSpec",
    "FERMI_GTX480",
    "GpuProfile",
    "KernelLaunch",
    "KernelTiming",
    "MultiGpuRun",
    "Occupancy",
    "PhaseTime",
    "bank_conflict_degree",
    "coalesced_transactions",
    "detect_devices",
    "expected_random_conflict_degree",
    "launch_kernel",
    "occupancy",
    "simulate_multi_gpu",
    "transfer_time",
]
