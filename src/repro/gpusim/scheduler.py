"""Occupancy and SM-level block scheduling.

Occupancy follows the CUDA occupancy-calculator rules restricted to the
two resources that matter for CULZSS: threads and shared memory (the
kernels use few registers).  The scheduler distributes blocks round-
robin over SMs and charges each SM the sum of its blocks' cycles plus a
fixed dispatch cost per block; the kernel's cycle count is the maximum
over SMs (the straggler SM ends the kernel), floored by the global-
bandwidth time for the bytes the kernel moves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.spec import DeviceSpec
from repro.util.validation import require, require_range

__all__ = ["Occupancy", "occupancy", "schedule_blocks"]


@dataclass(frozen=True)
class Occupancy:
    """Resident blocks/warps per SM and which resource limited them."""

    resident_blocks: int
    resident_warps: int
    limiter: str

    @property
    def launchable(self) -> bool:
        return self.resident_blocks >= 1


def occupancy(spec: DeviceSpec, threads_per_block: int,
              shared_per_block: int) -> Occupancy:
    """How many blocks of this shape fit on one SM simultaneously."""
    require_range(threads_per_block, 1, spec.max_threads_per_block,
                  "threads_per_block")
    require_range(shared_per_block, 0, 1 << 30, "shared_per_block")
    if shared_per_block > spec.shared_mem_per_sm:
        return Occupancy(0, 0, "shared memory (block does not fit)")

    by_threads = spec.max_threads_per_sm // threads_per_block
    by_shared = (spec.shared_mem_per_sm // shared_per_block
                 if shared_per_block else spec.max_blocks_per_sm)
    by_blocks = spec.max_blocks_per_sm
    resident = min(by_threads, by_shared, by_blocks)
    limiter = {by_threads: "threads", by_shared: "shared memory",
               by_blocks: "max blocks"}[resident]
    warps_per_block = -(-threads_per_block // spec.warp_size)
    return Occupancy(resident, resident * warps_per_block, limiter)


def latency_hiding_factor(spec: DeviceSpec, occ: Occupancy) -> float:
    """Fraction of global latency hidden by resident-warp switching.

    With ``w`` resident warps each keeping ``memory_parallelism_per_warp``
    loads in flight, an SM overlaps ``w·mlp`` outstanding accesses; full
    hiding needs roughly ``global_latency / shared_latency`` of them.
    The factor scales the *exposed* (unhidden) latency: 1.0 means
    nothing hidden, → 0 fully hidden.
    """
    if occ.resident_warps <= 0:
        return 1.0
    needed = spec.global_latency_cycles / max(spec.shared_latency_cycles, 1.0)
    outstanding = occ.resident_warps * spec.memory_parallelism_per_warp
    hidden = min(1.0, outstanding / needed)
    return 1.0 - hidden * 0.95  # conservatively never hide the last 5 %


def schedule_blocks(spec: DeviceSpec, block_cycles: np.ndarray,
                    bytes_moved: float, occ: Occupancy) -> dict[str, float]:
    """Distribute per-block cycle costs over SMs.

    Returns a breakdown dict with the kernel's total cycles and the
    compute/bandwidth components.  ``block_cycles`` already includes
    each block's memory-stall cycles; this stage adds dispatch overhead
    and the bandwidth floor.
    """
    require(occ.launchable, "launch config does not fit on an SM")
    cycles = np.asarray(block_cycles, dtype=np.float64)
    n_blocks = cycles.size
    if n_blocks == 0:
        return {"cycles": 0.0, "sm_cycles": 0.0, "bandwidth_cycles": 0.0,
                "dispatch_cycles": 0.0}

    per_block = cycles + spec.block_dispatch_cycles
    # Round-robin assignment: SM s gets blocks s, s+S, s+2S, …  With
    # thousands of blocks this is indistinguishable from dynamic
    # scheduling; with few blocks it exposes the tail effect correctly.
    sm_loads = np.zeros(spec.sm_count, dtype=np.float64)
    assign = np.arange(n_blocks) % spec.sm_count
    np.add.at(sm_loads, assign, per_block)
    # Resident blocks overlap each other's stalls within an SM; the
    # benefit is already inside block_cycles via latency_hiding_factor.
    sm_cycles = float(sm_loads.max())

    bandwidth_cycles = (bytes_moved / spec.global_bandwidth_bps
                        ) * spec.core_clock_hz
    total = max(sm_cycles, bandwidth_cycles)
    return {
        "cycles": total,
        "sm_cycles": sm_cycles,
        "bandwidth_cycles": bandwidth_cycles,
        "dispatch_cycles": float(spec.block_dispatch_cycles * n_blocks),
    }
