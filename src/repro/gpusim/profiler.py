"""Phase-level profile of a simulated GPU pipeline run.

A CULZSS run is a sequence of phases — H2D copy, kernel(s), D2H copy,
CPU post-processing — some of which may overlap (§III.B.3: the V2
fixup "brings an opportunity for CPU-GPU computation overlap").  The
profile records each phase, whether it overlapped, and produces the
end-to-end time plus a human-readable report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["GpuProfile", "PhaseTime"]


@dataclass
class PhaseTime:
    """One named phase with its modeled duration in seconds."""

    name: str
    seconds: float
    overlapped_with: str | None = None


@dataclass
class GpuProfile:
    """Accumulates pipeline phases and computes the end-to-end time.

    Phases added with ``overlap_with`` contribute only the amount by
    which they exceed the phase they hide behind — the standard
    software-pipelining approximation (steady state dominated by the
    slower stage; the one-iteration fill cost is charged by the caller
    where it matters).
    """

    phases: list[PhaseTime] = field(default_factory=list)

    def add(self, name: str, seconds: float,
            overlap_with: str | None = None) -> None:
        if seconds < 0:
            raise ValueError(f"negative phase time for {name}")
        self.phases.append(PhaseTime(name, seconds, overlap_with))

    def phase_seconds(self, name: str) -> float:
        return sum(p.seconds for p in self.phases if p.name == name)

    @property
    def total_seconds(self) -> float:
        total = 0.0
        for phase in self.phases:
            if phase.overlapped_with is None:
                total += phase.seconds
            else:
                hidden_behind = self.phase_seconds(phase.overlapped_with)
                total += max(0.0, phase.seconds - hidden_behind)
        return total

    def report(self) -> str:
        lines = [f"{'phase':<28} {'seconds':>12}  overlap"]
        for p in self.phases:
            note = f"(hidden behind {p.overlapped_with})" if p.overlapped_with else ""
            lines.append(f"{p.name:<28} {p.seconds:>12.6f}  {note}")
        lines.append(f"{'TOTAL':<28} {self.total_seconds:>12.6f}")
        return "\n".join(lines)
