"""Device specifications.

``FERMI_GTX480`` pins the paper's testbed card from its published spec
sheet; nothing in it is fitted to the paper's results.  A couple of
neighbouring parts are included so sweeps can ask "what would this have
looked like on other hardware" — a question the paper's §VII raises.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import require_range

__all__ = [
    "DeviceSpec",
    "FERMI_GTX480",
    "FERMI_C2050",
    "TESLA_GTX280",
    "detect_devices",
]


@dataclass(frozen=True)
class DeviceSpec:
    """Microarchitectural quantities the timing model consumes.

    Clocks and counts come from vendor spec sheets; latencies are the
    standard published microbenchmark figures for the generation
    (≈400-cycle global latency, ≈2-cycle conflict-free shared access on
    Fermi).
    """

    name: str
    sm_count: int
    cores_per_sm: int
    core_clock_hz: float
    warp_size: int = 32
    warp_schedulers_per_sm: int = 2
    max_threads_per_block: int = 1024
    max_threads_per_sm: int = 1536
    max_blocks_per_sm: int = 8
    #: Paper §V: "There is a 16KB shared memory space for all the
    #: threads in a block" — the 16 KB shared / 48 KB L1 Fermi split.
    shared_mem_per_sm: int = 16 * 1024
    shared_banks: int = 32
    shared_latency_cycles: float = 2.0
    global_latency_cycles: float = 400.0
    #: Outstanding global loads one warp keeps in flight (Fermi issues
    #: independent loads past pending misses); scales latency hiding.
    memory_parallelism_per_warp: float = 4.0
    transaction_bytes: int = 128
    global_bandwidth_bps: float = 177.4e9
    pcie_bandwidth_bps: float = 5.5e9  # effective PCIe 2.0 x16
    pcie_latency_s: float = 10e-6
    #: Fixed cost of dispatching one thread block (scheduling, launch
    #: bookkeeping) — the term that punishes very small blocks in the
    #: threads-per-block sweep.
    block_dispatch_cycles: float = 600.0
    kernel_launch_latency_s: float = 7e-6

    def __post_init__(self) -> None:
        require_range(self.sm_count, 1, 1024, "sm_count")
        require_range(self.warp_size, 1, 128, "warp_size")
        require_range(self.cores_per_sm, 1, 4096, "cores_per_sm")

    @property
    def total_cores(self) -> int:
        return self.sm_count * self.cores_per_sm

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    def with_shared_mem(self, nbytes: int) -> "DeviceSpec":
        """Variant with a different shared-memory configuration."""
        return replace(self, shared_mem_per_sm=nbytes)


#: The paper's card: 15 SMs × 32 cores @ 1401 MHz shader clock.
FERMI_GTX480 = DeviceSpec(
    name="GeForce GTX 480",
    sm_count=15,
    cores_per_sm=32,
    core_clock_hz=1.401e9,
)

#: Same generation, ECC-class part — for cross-device sweeps.
FERMI_C2050 = DeviceSpec(
    name="Tesla C2050",
    sm_count=14,
    cores_per_sm=32,
    core_clock_hz=1.15e9,
    global_bandwidth_bps=144e9,
)

#: Previous generation (pre-Fermi): smaller shared memory, narrower SMs.
TESLA_GTX280 = DeviceSpec(
    name="GeForce GTX 280",
    sm_count=30,
    cores_per_sm=8,
    core_clock_hz=1.296e9,
    max_threads_per_sm=1024,
    shared_mem_per_sm=16 * 1024,
    global_bandwidth_bps=141.7e9,
    warp_schedulers_per_sm=1,
)

_REGISTRY = {spec.name: spec for spec in (FERMI_GTX480, FERMI_C2050, TESLA_GTX280)}


def detect_devices() -> list[DeviceSpec]:
    """The simulator's analogue of the library-load device scan (§III).

    The paper's library "gets initialized when loaded, detects GPUs,
    and determines capabilities"; in the simulator the machine always
    exposes the paper's testbed card.
    """
    return [FERMI_GTX480]


def device_by_name(name: str) -> DeviceSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown device {name!r}; known: {sorted(_REGISTRY)}") from None
