"""Kernel launch simulation: per-block work → modeled kernel time.

A functional kernel (e.g. the CULZSS matchers) reports what each block
*did* as a :class:`BlockCost`: lockstep-aggregated compute cycles,
shared-memory accesses with their conflict degree, and global-memory
transactions/bytes.  :func:`launch_kernel` folds those into cycles via
the occupancy and scheduling models and converts to seconds on the
device clock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.scheduler import (
    Occupancy,
    latency_hiding_factor,
    occupancy,
    schedule_blocks,
)
from repro.gpusim.spec import DeviceSpec
from repro.gpusim.timing import KernelTiming
from repro.util.validation import require

__all__ = ["BlockCost", "KernelLaunch", "launch_kernel", "warp_lockstep_cycles"]


def warp_lockstep_cycles(lane_cycles: np.ndarray, warp_size: int) -> float:
    """Total cycles of warps executing lanes in lockstep.

    ``lane_cycles`` holds each lane's individual work; lanes are grouped
    into warps of ``warp_size`` consecutive entries, and every warp
    costs the *maximum* over its lanes (divergent lanes idle, they do
    not help).  This single line is where warp divergence enters the
    model.
    """
    lanes = np.asarray(lane_cycles, dtype=np.float64)
    if lanes.size == 0:
        return 0.0
    pad = (-lanes.size) % warp_size
    if pad:
        lanes = np.concatenate([lanes, np.zeros(pad)])
    return float(lanes.reshape(-1, warp_size).max(axis=1).sum())


@dataclass
class BlockCost:
    """What one thread block did, in hardware-visible units.

    ``compute_cycles`` must already be warp-lockstep aggregated (use
    :func:`warp_lockstep_cycles`).  ``shared_accesses`` are individual
    warp accesses; they serialize by ``bank_conflict_degree``.
    ``global_transactions`` are 128-byte transactions; their latency is
    partially hidden according to occupancy.
    """

    compute_cycles: float
    shared_accesses: float = 0.0
    bank_conflict_degree: float = 1.0
    global_transactions: float = 0.0
    global_bytes: float = 0.0
    #: Extra memory-pipe cycles charged as-is (e.g. L1-cached global
    #: buffer traffic in the shared-memory ablation); unlike compute
    #: these do not benefit from dual-issue.
    memory_cycles: float = 0.0


@dataclass
class KernelLaunch:
    """A grid of blocks plus the resources each block claims."""

    name: str
    threads_per_block: int
    shared_mem_per_block: int
    blocks: list[BlockCost]


def launch_kernel(spec: DeviceSpec, launch: KernelLaunch) -> KernelTiming:
    """Simulate one kernel launch and return its modeled timing."""
    require(len(launch.blocks) > 0, "empty grid")
    occ: Occupancy = occupancy(spec, launch.threads_per_block,
                               launch.shared_mem_per_block)
    require(occ.launchable,
            f"kernel {launch.name}: block needs {launch.shared_mem_per_block} B "
            f"shared, SM has {spec.shared_mem_per_sm} B")
    exposed = latency_hiding_factor(spec, occ)

    compute = np.array([b.compute_cycles for b in launch.blocks])
    shared = np.array([b.shared_accesses * b.bank_conflict_degree
                       * spec.shared_latency_cycles for b in launch.blocks])
    memory = np.array([b.memory_cycles for b in launch.blocks])
    glob = np.array([b.global_transactions for b in launch.blocks])
    global_stall = glob * spec.global_latency_cycles * exposed
    # Warp schedulers issue independent warps back-to-back: an SM with
    # two schedulers retires two warps' instructions per cycle pair, so
    # compute throughput divides by the scheduler count.
    block_cycles = (compute / spec.warp_schedulers_per_sm
                    + shared + memory + global_stall)

    bytes_moved = float(sum(b.global_bytes for b in launch.blocks))
    sched = schedule_blocks(spec, block_cycles, bytes_moved, occ)
    seconds = (sched["cycles"] / spec.core_clock_hz
               + spec.kernel_launch_latency_s)
    return KernelTiming(
        name=launch.name,
        cycles=sched["cycles"],
        seconds=seconds,
        breakdown={
            "compute_cycles": float((compute / spec.warp_schedulers_per_sm).sum()),
            "shared_cycles": float(shared.sum()),
            "memory_cycles": float(memory.sum()),
            "global_stall_cycles": float(global_stall.sum()),
            "sm_cycles": sched["sm_cycles"],
            "bandwidth_cycles": sched["bandwidth_cycles"],
            "dispatch_cycles": sched["dispatch_cycles"],
            "resident_blocks": float(occ.resident_blocks),
            "resident_warps": float(occ.resident_warps),
            "exposed_latency_fraction": exposed,
        },
    )
