"""The five datasets, in the paper's table order."""

from __future__ import annotations

from repro.datasets.base import DatasetSpec
from repro.datasets.cfiles import generate_cfiles
from repro.datasets.demap import generate_demap
from repro.datasets.dictionary import generate_dictionary
from repro.datasets.highly_compressible import generate_highly_compressible
from repro.datasets.kernel_tarball import generate_kernel_tarball

__all__ = ["REGISTRY"]

REGISTRY = {
    "cfiles": DatasetSpec(
        name="cfiles",
        title="C files",
        description="Synthetic C source corpus (text-based input)",
        generator=generate_cfiles,
        default_seed=0xC0DE01,
        paper_serial_ratio=0.548,
    ),
    "demap": DatasetSpec(
        name="demap",
        title="DE Map",
        description="USGS DRG/DLG-style raster scanlines + vector records",
        generator=generate_demap,
        default_seed=0xC0DE02,
        paper_serial_ratio=0.339,
    ),
    "dictionary": DatasetSpec(
        name="dictionary",
        title="Dictionary",
        description="Alphabetically ordered non-repeating word list",
        generator=generate_dictionary,
        default_seed=0xC0DE03,
        paper_serial_ratio=0.614,
    ),
    "kernel_tarball": DatasetSpec(
        name="kernel_tarball",
        title="Kernel tarball",
        description="ustar-framed synthetic kernel source tree slice",
        generator=generate_kernel_tarball,
        default_seed=0xC0DE04,
        paper_serial_ratio=0.551,
    ),
    "highly_compressible": DatasetSpec(
        name="highly_compressible",
        title="Highly Compr.",
        description="Repeating 20-byte patterns (LZSS-optimal custom data)",
        generator=generate_highly_compressible,
        default_seed=0xC0DE05,
        paper_serial_ratio=0.135,
    ),
}
