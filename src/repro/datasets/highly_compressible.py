"""The paper's custom highly-compressible dataset.

"It contains repeating characters in substrings of 20.  It is chosen
to see how well our program can run given the opportunity to compress
in an optimal data for LZSS" (§IV.B): 20-byte patterns, each repeated
many times before switching to the next pattern.  The repeat count is
geometric (mean ≈ 60 repetitions ⇒ pattern blocks ≈ 1.2 KB), which
lands the serial ratio at Table II's 13.5 % — the serial coder pays
one 17-bit token per 18 bytes inside a block plus 20 literals per
switch — while V2's 258-byte matches halve that, exactly the Table II
relationship (13.5 % vs 6.3 %)."""

from __future__ import annotations

import numpy as np

__all__ = ["generate_highly_compressible"]

_PATTERN_LEN = 20
_MEAN_REPEATS = 60


def generate_highly_compressible(size: int, seed: int) -> bytes:
    rng = np.random.default_rng(seed)
    out = bytearray()
    while len(out) < size:
        pattern = rng.integers(ord("a"), ord("z") + 1, _PATTERN_LEN,
                               dtype=np.uint8).tobytes()
        repeats = int(rng.geometric(1.0 / _MEAN_REPEATS))
        out.extend(pattern * repeats)
    return bytes(out[:size])
