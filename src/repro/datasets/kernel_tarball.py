"""Synthetic Linux-kernel-tarball slice: ustar members of mixed content.

A kernel tarball is C sources, headers, Makefiles and Kconfig text
wrapped in 512-byte ustar headers.  The generator emits genuine ustar
headers (name, mode, size in octal, valid checksum) around synthetic
members: C files (reusing the C-corpus generator), header files with
``#define`` blocks, and Makefile fragments — matching the ~55 % serial
ratio of Table II's kernel row."""

from __future__ import annotations

import numpy as np

from repro.datasets.cfiles import generate_cfiles

__all__ = ["generate_kernel_tarball", "ustar_header"]

_DIRS = [b"drivers/net/", b"fs/ext4/", b"kernel/sched/", b"mm/", b"lib/",
         b"arch/x86/kernel/", b"include/linux/", b"net/ipv4/", b"block/"]
_CONFIG_ITEMS = [b"DEBUG", b"SMP", b"PREEMPT", b"NUMA", b"TRACE", b"PM",
                 b"HOTPLUG", b"MODULES", b"AUDIT", b"SECCOMP"]


def ustar_header(name: bytes, size: int, mtime: int = 1300000000) -> bytes:
    """A valid 512-byte ustar file header."""
    h = bytearray(512)
    h[0:len(name)] = name[:100]
    h[100:108] = b"0000644\x00"
    h[108:116] = b"0000000\x00"
    h[116:124] = b"0000000\x00"
    h[124:136] = b"%011o\x00" % size
    h[136:148] = b"%011o\x00" % mtime
    h[148:156] = b" " * 8  # checksum field counted as spaces
    h[156] = ord("0")  # regular file
    h[257:263] = b"ustar\x00"
    h[263:265] = b"00"
    checksum = sum(h)
    h[148:156] = b"%06o\x00 " % checksum
    return bytes(h)


def _header_file(rng: np.random.Generator, size: int, seed: int) -> bytes:
    out = bytearray(b"#ifndef _LINUX_GEN_H\n#define _LINUX_GEN_H\n\n")
    while len(out) < size:
        name = _CONFIG_ITEMS[int(rng.integers(len(_CONFIG_ITEMS)))]
        out.extend(b"#define %s_%03d 0x%04x\n"
                   % (name, int(rng.integers(0, 512)),
                      int(rng.integers(0, 1 << 16))))
    out.extend(b"\n#endif\n")
    return bytes(out[:size])


def _makefile(rng: np.random.Generator, size: int) -> bytes:
    out = bytearray(b"# SPDX-License-Identifier: GPL-2.0\n")
    while len(out) < size:
        obj = b"mod_%03d" % int(rng.integers(0, 512))
        out.extend(b"obj-$(CONFIG_%s) += %s.o\n"
                   % (_CONFIG_ITEMS[int(rng.integers(len(_CONFIG_ITEMS)))], obj))
    return bytes(out[:size])


def _firmware_blob(rng: np.random.Generator, size: int) -> bytes:
    """Firmware / pre-built object blob: mostly incompressible machine
    code and data with short zero-padded sections — the binary fraction
    every real kernel tree drags along."""
    out = bytearray()
    while len(out) < size:
        if rng.random() < 0.18:
            out.extend(b"\x00" * int(rng.integers(16, 96)))
        else:
            n = int(rng.integers(80, 400))
            out.extend(rng.integers(0, 256, n, dtype=np.uint8).tobytes())
    return bytes(out[:size])


def generate_kernel_tarball(size: int, seed: int) -> bytes:
    rng = np.random.default_rng(seed)
    out = bytearray()
    member = 0
    while len(out) < size:
        member += 1
        kind = int(rng.integers(0, 12))
        d = _DIRS[int(rng.integers(len(_DIRS)))]
        if kind < 6:
            name = d + b"gen_%04d.c" % member
            body = generate_cfiles(int(rng.integers(8000, 64000)),
                                   seed + member)
        elif kind < 8:
            name = d + b"gen_%04d.h" % member
            body = _header_file(rng, int(rng.integers(2000, 12000)), seed)
        elif kind < 9:
            name = d + b"Makefile"
            body = _makefile(rng, int(rng.integers(400, 2000)))
        else:
            name = d + b"fw_%04d.bin" % member
            body = _firmware_blob(rng, int(rng.integers(6000, 24000)))
        out.extend(ustar_header(name, len(body)))
        out.extend(body)
        pad = (-len(body)) % 512
        out.extend(b"\x00" * pad)
    return bytes(out[:size])
