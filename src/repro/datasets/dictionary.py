"""Synthetic English-dictionary data — sorted, non-repeating word list.

"It is chosen for none repeating text, since it is a list of
alphabetically ordered not repeating words" (§IV.B).  The generator
builds morphologically plausible words (onset–vowel–coda syllables,
common suffixes), sorts and deduplicates them, one per line — so the
only redundancy is the prefix sharing between alphabetic neighbours,
exactly the structure that puts this dataset at the bottom of every
compressor's table (61.4 % serial)."""

from __future__ import annotations

import numpy as np

__all__ = ["generate_dictionary"]

_ONSETS = ["b", "bl", "br", "c", "ch", "cl", "cr", "d", "dr", "dw", "f",
           "fl", "fr", "g", "gl", "gn", "gr", "h", "j", "k", "kl", "kn",
           "l", "m", "n", "p", "ph", "pl", "pr", "ps", "qu", "r", "rh",
           "s", "sc", "scr", "sh", "shr", "sk", "sl", "sm", "sn", "sp",
           "spl", "spr", "squ", "st", "str", "sw", "t", "th", "thr", "tr",
           "tw", "v", "w", "wh", "wr", "x", "y", "z"]
_VOWELS = ["a", "e", "i", "o", "u", "y", "ai", "au", "aw", "ay", "ea",
           "ee", "ei", "eu", "ew", "ey", "ia", "ie", "io", "oa", "oe",
           "oi", "oo", "ou", "ow", "oy", "ua", "ue", "ui", "uo"]
_CODAS = ["", "b", "bs", "c", "ck", "ct", "d", "dge", "ds", "f", "ft",
          "g", "gh", "ght", "k", "l", "lb", "ld", "lf", "lk", "ll", "lm",
          "lp", "lt", "m", "mb", "mp", "n", "nce", "nch", "nd", "ng",
          "nk", "nt", "p", "pt", "r", "rb", "rc", "rd", "rf", "rg", "rk",
          "rl", "rm", "rn", "rp", "rst", "rt", "s", "sk", "sm", "sp",
          "ss", "st", "t", "tch", "th", "v", "w", "x", "z", "zz"]
_SUFFIXES = ["", "", "", "s", "ed", "ing", "er", "est", "ly", "ness",
             "ment", "tion", "able", "ive", "ous", "ful", "less", "ish",
             "ward", "dom", "ery", "ism", "ist", "ity", "ize", "hood"]


def _make_words(rng: np.random.Generator, count: int) -> list[bytes]:
    n_on, n_vo, n_co, n_su = len(_ONSETS), len(_VOWELS), len(_CODAS), len(_SUFFIXES)
    syllables = rng.integers(2, 4, size=count)
    words = []
    for syl in syllables:
        parts = []
        for _ in range(int(syl)):
            parts.append(_ONSETS[int(rng.integers(n_on))])
            parts.append(_VOWELS[int(rng.integers(n_vo))])
            parts.append(_CODAS[int(rng.integers(n_co))])
        stem = "".join(parts).encode()
        words.append(stem)
        # Word families: a stem is often followed alphabetically by its
        # inflected forms (abandon, abandoned, abandonment …) — the
        # adjacent-entry redundancy that dominates dictionary LZSS.
        if rng.random() < 0.10:
            k = int(rng.integers(1, 4))
            picks = rng.choice(n_su, size=k, replace=False)
            for p in sorted(picks):
                if _SUFFIXES[int(p)]:
                    words.append(stem + _SUFFIXES[int(p)].encode())
    return words


def generate_dictionary(size: int, seed: int) -> bytes:
    rng = np.random.default_rng(seed)
    out = bytearray()
    # Average word line ≈ 9 bytes; generate in batches, sorted globally
    # by generating per leading-letter groups the way a real dictionary
    # reads (the whole output is produced in sorted order).
    approx_words = size // 8 + 1024
    words = sorted(set(_make_words(rng, approx_words)))
    body = b"\n".join(words) + b"\n"
    while len(out) < size:
        out.extend(body)
        if len(out) < size:  # need more unique material, extend the list
            extra = sorted(set(_make_words(rng, approx_words)))
            body = b"\n".join(extra) + b"\n"
    return bytes(out[:size])
