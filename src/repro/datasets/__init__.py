"""Synthetic stand-ins for the paper's five 128 MB datasets (§IV.B).

The originals (a C-file corpus, USGS Delaware DRG/DLG map data, an
English dictionary, a Linux kernel tarball slice, and a custom
highly-compressible file) are not redistributable or not pinned; these
generators produce deterministic data with the same *match-statistics
character* — what LZSS-family behaviour actually depends on — tuned so
the serial-LZSS ratio column of Table II lands close to the paper's.
Everything else (the other systems' ratios and every timing) is then a
prediction, not a tuning target.
"""

from repro.datasets.base import DatasetSpec, available_datasets, generate, get_spec
from repro.datasets.registry import REGISTRY

__all__ = [
    "DatasetSpec",
    "REGISTRY",
    "available_datasets",
    "generate",
    "get_spec",
]
