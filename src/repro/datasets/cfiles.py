"""Synthetic C source corpus — the paper's "collection of C files".

Table II pins a strong constraint on this data: shrinking the LZSS
window from 4096 to 128 bytes cost the authors less than one point of
ratio (54.8 % → 55.7 %), so the corpus' matchable redundancy must be
almost entirely *short-range* — the adjacent-line similarity of real
systems code (register-write blocks, switch arms, field initializers,
table rows) — while long-range self-similarity is broken up by unique
identifiers, literals and comments.

The generator therefore emits *stanzas*: short runs of lines sharing a
one-off template (its name is unique to the stanza, so the template
never matches across stanzas) with varying numeric/identifier fields,
interleaved with high-entropy filler (hex constants, random-word
comments, string literals).  The stanza/filler mix is the single knob
tuned toward the 54.8 % serial cell.
"""

from __future__ import annotations

import numpy as np

__all__ = ["generate_cfiles"]

_TYPES = [b"int", b"char", b"long", b"unsigned", b"size_t", b"u32", b"u64",
          b"s16", b"void *", b"bool"]

_HEADERS = [b"stdio.h", b"stdlib.h", b"string.h", b"unistd.h", b"errno.h",
            b"sys/types.h", b"fcntl.h", b"signal.h", b"time.h", b"math.h",
            b"assert.h", b"stdint.h", b"limits.h", b"ctype.h"]

_SYLLABLES = [b"buf", b"len", b"ptr", b"idx", b"cnt", b"tmp", b"ret", b"val",
              b"str", b"num", b"pos", b"off", b"ctx", b"cfg", b"dev", b"req",
              b"node", b"list", b"head", b"tail", b"data", b"size", b"flag",
              b"mask", b"bit", b"reg", b"addr", b"page", b"lock", b"queue",
              b"iter", b"slot", b"rank", b"span", b"core", b"pkt", b"seq",
              b"xfer", b"dma", b"irq", b"hw", b"fw", b"phy", b"mac"]

_COMMENT_WORDS = [b"handle", b"update", b"the", b"buffer", b"state", b"when",
                  b"caller", b"holds", b"lock", b"before", b"returning",
                  b"overflow", b"check", b"boundary", b"case", b"per", b"spec",
                  b"legacy", b"path", b"fast", b"slow", b"rare", b"never",
                  b"must", b"not", b"sleep", b"here", b"hardware", b"quirk"]


def _name(rng: np.random.Generator, tag: int) -> bytes:
    """A fresh identifier: syllables + a unique numeric tag."""
    a = _SYLLABLES[int(rng.integers(len(_SYLLABLES)))]
    b = _SYLLABLES[int(rng.integers(len(_SYLLABLES)))]
    return b"%s_%s_%x" % (a, b, tag)


#: Per-stanza coding-style components, combined combinatorially
#: (≈3000 distinct styles).  Style is constant within a stanza — so
#: matches inside the 128-byte neighbourhood are untouched — but two
#: stanzas virtually never share one, which breaks up the 6–10-byte
#: operator/format micro-matches that otherwise dominate the
#: 512–4096-byte distance band.
_INDENTS = [b"\t", b"    ", b"  ", b"        ", b"   ", b"\t\t", b" ", b"\t "]
_ASSIGNS = [b" = ", b"=", b" := ", b"= ", b" =  ", b" =\t", b" <<= ", b" |= "]
_SPACES = [b"", b" "]
_HEXFMTS = [b"0x%04x", b"0x%X", b"0x%x", b"%#06x", b"0x%05X", b"0X%04X",
            b"%#x", b"0x%06x", b"%uU", b"%dL"]
_QUALS = [b"static", b"static inline", b"STATIC", b"static __hot", b"extern",
          b"static noinline", b"__private", b"static __cold", b"inline"]


def generate_cfiles(size: int, seed: int) -> bytes:
    rng = np.random.default_rng(seed)
    out = bytearray()
    tag = int(rng.integers(1 << 16))
    style = (_INDENTS[0], _ASSIGNS[0], _SPACES[0], _HEXFMTS[0], _QUALS[0])

    def next_tag() -> int:
        nonlocal tag
        tag += int(rng.integers(1, 64))
        return tag

    def hexconst(bound: int) -> bytes:
        return style[3] % int(rng.integers(bound))

    def pick_style() -> None:
        nonlocal style
        style = (_INDENTS[int(rng.integers(len(_INDENTS)))],
                 _ASSIGNS[int(rng.integers(len(_ASSIGNS)))],
                 _SPACES[int(rng.integers(len(_SPACES)))],
                 _HEXFMTS[int(rng.integers(len(_HEXFMTS)))],
                 _QUALS[int(rng.integers(len(_QUALS)))])

    def stanza_calls() -> None:
        """Register-write / call block: adjacent-line similarity."""
        pick_style()
        ind, _, sp, _, _ = style
        fn = _name(rng, next_tag())
        arg = _name(rng, next_tag())
        k = int(rng.integers(3, 9))
        for _ in range(k):
            out.extend(b"%s%s%s(%s, %s, %d);\n"
                       % (ind, fn, sp, arg, hexconst(1 << 16),
                          int(rng.integers(0, 100))))

    def stanza_fields() -> None:
        """Struct-field initializer block."""
        pick_style()
        ind, asn, _, _, _ = style
        base = _name(rng, next_tag())
        k = int(rng.integers(3, 8))
        for _ in range(k):
            fld = _SYLLABLES[int(rng.integers(len(_SYLLABLES)))]
            out.extend(b"%s%s->%s%s%s_%s;\n"
                       % (ind, base, fld, asn, fld.upper(),
                          _SYLLABLES[int(rng.integers(len(_SYLLABLES)))].upper()))

    def stanza_cases() -> None:
        """Switch arms sharing shape."""
        pick_style()
        ind, asn, sp, _, _ = style
        var = _name(rng, next_tag())
        act = _name(rng, next_tag())
        out.extend(b"%sswitch%s(%s) {\n" % (ind, sp, var))
        for _ in range(int(rng.integers(3, 7))):
            out.extend(b"%scase %s:\n%s%s%s%s%s(%d);\n%s%sbreak;\n"
                       % (ind, hexconst(256), ind, ind, var, asn, act,
                          int(rng.integers(1000)), ind, ind))
        out.extend(b"%s}\n" % ind)

    def filler_runs() -> None:
        """Long single-character runs: separator comments, zero tables.

        Real C is full of these (banner comments, padded arrays); they
        are the local-run content on which V2's 258-byte matches beat
        the serial coder's 18-byte cap.
        """
        pick_style()
        ind, asn, _, _, _ = style
        if rng.random() < 0.5:
            ch = [b"*", b"=", b"-", b"~"][int(rng.integers(4))]
            out.extend(b"%s/*%s*/\n" % (ind, ch * int(rng.integers(40, 120))))
        else:
            k = int(rng.integers(10, 40))
            out.extend(b"%sstatic char %s[%d]%s{ %s};\n"
                       % (ind, _name(rng, next_tag()), k, asn, b"0, " * k))

    def filler_entropy() -> None:
        """Unique, poorly-compressible material."""
        pick_style()
        ind, asn, sp, _, _ = style
        roll = rng.random()
        if roll < 0.20:
            filler_runs()
            return
        if roll < 0.42:
            # Opaque literals: crypto keys, UUIDs, build hashes — the
            # incompressible fraction every real corpus carries.
            blob = rng.integers(33, 127, int(rng.integers(40, 90)),
                                dtype=np.uint8).tobytes()
            blob = blob.replace(b'"', b"'").replace(b"\\", b"/")
            out.extend(b'%sstatic const char *%s%s"%s";\n'
                       % (ind, _name(rng, next_tag()), asn, blob))
            return
        kind = int(rng.integers(0, 4))
        if kind == 0:
            words = b" ".join(
                _COMMENT_WORDS[int(rng.integers(len(_COMMENT_WORDS)))]
                for _ in range(int(rng.integers(3, 9))))
            out.extend(b"%s/* %s -- %s */\n"
                       % (ind, words, hexconst(1 << 31)))
        elif kind == 1:
            vals = b", ".join(hexconst(1 << 31) for _ in range(int(rng.integers(4, 10))))
            out.extend(b"%sconst u32 %s[]%s{ %s };\n"
                       % (ind, _name(rng, next_tag()), asn, vals))
        elif kind == 2:
            out.extend(b'%s%s("%s=%%u k%s%08x\\n", %s);\n'
                       % (ind, _name(rng, next_tag()), _name(rng, next_tag()),
                          asn.strip(), int(rng.integers(1 << 31)),
                          _name(rng, next_tag())))
        else:
            a, b = _name(rng, next_tag()), _name(rng, next_tag())
            out.extend(b"%s%s%s(%s >> %d) ^ %s;\n"
                       % (ind, a, asn, b, int(rng.integers(1, 24)),
                          hexconst(1 << 24)))

    def emit_function() -> None:
        pick_style()
        ind, _, sp, _, qual = style
        fn = _name(rng, next_tag())
        rt = _TYPES[int(rng.integers(len(_TYPES)))]
        a1 = _name(rng, next_tag())
        st = _name(rng, next_tag())
        brace = [b"\n{\n", b" {\n", b"\n{\n\n"][int(rng.integers(3))]
        out.extend(b"%s %s %s%s(struct %s *%s)%s"
                   % (qual, rt, fn, sp, st, a1, brace))
        n_stanzas = int(rng.integers(2, 6))
        stanzas = [stanza_calls, stanza_fields, stanza_cases]
        for _ in range(n_stanzas):
            if rng.random() < 0.42:
                stanzas[int(rng.integers(len(stanzas)))]()
            else:
                for _ in range(int(rng.integers(2, 6))):
                    filler_entropy()
        tail = [b"%sreturn %d;\n}\n\n", b"%sreturn -%d;\n}\n\n",
                b"%sgoto out_%d;\n}\n\n"][int(rng.integers(3))]
        out.extend(tail % (ind, int(rng.integers(0, 40))))

    def emit_file() -> None:
        pick_style()
        out.extend(b"/* gen_%06x.c */\n" % next_tag())
        for h in rng.choice(len(_HEADERS), size=int(rng.integers(2, 7)),
                            replace=False):
            out.extend(b"#include <gen%d/%s>\n"
                       % (int(rng.integers(40)), _HEADERS[int(h)]))
        out.extend(b"\n")
        for _ in range(int(rng.integers(3, 8))):
            emit_function()

    while len(out) < size:
        emit_file()
    return bytes(out[:size])
