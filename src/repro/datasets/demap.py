"""Synthetic Delaware DRG/DLG map data — rasters plus vector records.

The originals are USGS digital raster graphics (paletted topographic
scans: long horizontal runs of few colors) interleaved with digital
line graphs (structured ASCII records of coordinates and feature
codes).  The generator mirrors both: ~85 % Markov-run raster scanlines
over a 14-color palette (geometric run lengths, mean ≈ 24 px) and
~15 % DLG-style text records with slowly-drifting coordinates.  Long
runs are the property that makes this dataset the one where CULZSS
V2's 258-byte matches *beat* the serial ratio (Table II) while V2's
no-skip matching makes it slow (Table I).
"""

from __future__ import annotations

import numpy as np

__all__ = ["generate_demap"]

_FLAT_PALETTE = 8
_DETAIL_PALETTE = 64
_FEATURES = [b"ROAD", b"TRAIL", b"RAIL", b"PIPE", b"STREAM", b"BOUND",
             b"CONTOUR", b"BRIDGE", b"LEVEE", b"CANAL"]


def _runs(rng: np.random.Generator, n_px: int, p_continue: float,
          palette: int) -> np.ndarray:
    """Geometric runs of palette values covering ``n_px`` pixels."""
    mean_run = 1.0 / (1.0 - p_continue)
    n_runs = int(n_px / mean_run * 1.6) + 16
    lengths = rng.geometric(1.0 - p_continue, size=n_runs)
    values = rng.integers(0, palette, size=n_runs)
    pixels = np.repeat(values.astype(np.uint8), lengths)
    while pixels.size < n_px:  # unlucky draw: top up
        pixels = np.concatenate([pixels, pixels[: n_px - pixels.size]])
    return pixels[:n_px]


def _raster_band(rng: np.random.Generator, n: int) -> bytes:
    """Scanned-topo-sheet pixels: noisy detail + flat background.

    Real DRGs are *scans*: linework and halftone areas have very short
    runs over a wide effective palette (anti-aliasing), while water and
    open background give very long single-color runs.  The mixture sets
    both the overall ratio (~34 %, Table II) and the long-run tail that
    lets V2's 258-byte matches edge out the serial coder.
    """
    parts: list[np.ndarray] = []
    total = 0
    while total < n:
        if rng.random() < 0.44:
            seg = int(rng.integers(120, 900))  # flat: water/background
            parts.append(_runs(rng, seg, 0.99, _FLAT_PALETTE))
        else:
            seg = int(rng.integers(80, 400))  # detail: linework/halftone
            parts.append(_runs(rng, seg, 0.66, _DETAIL_PALETTE))
        total += parts[-1].size
    return np.concatenate(parts)[:n].tobytes()


def _dlg_records(rng: np.random.Generator, n: int) -> bytes:
    """DLG-ish ASCII: drifting coordinates + feature attribute codes."""
    out = bytearray()
    northing = int(rng.integers(4_380_000, 4_420_000))
    easting = int(rng.integers(440_000, 470_000))
    while len(out) < n:
        northing += int(rng.integers(-40, 41))
        easting += int(rng.integers(-40, 41))
        feat = _FEATURES[int(rng.integers(len(_FEATURES)))]
        code = int(rng.integers(1, 10))
        out.extend(b"N%07d E%06d %-8s CLASS%d ATTR%03d\n"
                   % (northing, easting, feat, code, int(rng.integers(0, 64))))
    return bytes(out[:n])


def generate_demap(size: int, seed: int) -> bytes:
    rng = np.random.default_rng(seed)
    out = bytearray()
    while len(out) < size:
        # Alternate raster bands and DLG blocks, raster-heavy.
        band = int(rng.integers(24_000, 48_000))
        out.extend(_raster_band(rng, band))
        if len(out) < size:
            out.extend(_dlg_records(rng, int(band * 0.18)))
    return bytes(out[:size])
