"""Dataset registry plumbing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.util.validation import require, require_range

__all__ = ["DatasetSpec", "available_datasets", "generate", "get_spec"]


@dataclass(frozen=True)
class DatasetSpec:
    """One synthetic dataset: a deterministic ``generate(size, seed)``.

    ``paper_serial_ratio`` is the Table II serial-LZSS cell the
    generator was tuned toward (the only tuning target; see package
    docs).
    """

    name: str
    title: str
    description: str
    generator: Callable[[int, int], bytes]
    default_seed: int
    paper_serial_ratio: float

    def generate(self, size: int, seed: int | None = None) -> bytes:
        require_range(size, 0, 1 << 31, "size")
        data = self.generator(size, self.default_seed if seed is None else seed)
        require(len(data) == size, f"{self.name} generator produced "
                f"{len(data)} bytes, wanted {size}")
        return data


def _registry() -> dict[str, DatasetSpec]:
    from repro.datasets.registry import REGISTRY

    return REGISTRY


def available_datasets() -> list[str]:
    """Registered dataset names, in the paper's table order."""
    return list(_registry())


def get_spec(name: str) -> DatasetSpec:
    reg = _registry()
    require(name in reg, f"unknown dataset {name!r}; known: {list(reg)}")
    return reg[name]


def generate(name: str, size: int, seed: int | None = None) -> bytes:
    """Generate ``size`` bytes of the named dataset."""
    return get_spec(name).generate(size, seed)
