"""Tunable-compressibility generator for the §V crossover study.

"This version [V2] is suitable and gives best performance gain mainly
on files that are around 50% compressible data or less" — testing that
claim needs inputs whose compressibility is a dial, not a dataset.
``generate_tunable`` mixes locally-repetitive stanzas (highly matchable
within any window) with incompressible bytes; ``repetition`` sweeps the
serial-LZSS ratio monotonically from ~1.1 (pure noise) down to ~0.05
(pure runs).
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require_range

__all__ = ["generate_tunable"]


def generate_tunable(size: int, repetition: float, seed: int = 7) -> bytes:
    """``repetition`` ∈ [0, 1]: fraction of bytes drawn from local runs."""
    require_range(repetition, 0.0, 1.0, "repetition")
    rng = np.random.default_rng(seed)
    out = bytearray()
    while len(out) < size:
        if rng.random() < repetition:
            # a short pattern repeated locally — matchable in any window
            plen = int(rng.integers(4, 24))
            pattern = rng.integers(97, 123, plen, dtype=np.uint8).tobytes()
            out.extend(pattern * int(rng.integers(4, 40)))
        else:
            out.extend(rng.integers(0, 256, int(rng.integers(40, 200)),
                                    dtype=np.uint8).tobytes())
    return bytes(out[:size])
