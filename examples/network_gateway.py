#!/usr/bin/env python3
"""The paper's motivating scenario: a real compressing gateway pair.

"From an application perspective, such as in a network application, the
input data resides in a memory buffer that needs to be compressed at
one gateway of the network and decompressed at the egress gateway, so
the data looks the same going in as coming out." (§III)

Earlier revisions simulated this with a synchronous loop; this version
runs the actual `repro.service` gateway pair over localhost TCP: an
egress `GatewayServer` (receive → decompress → deliver), an ingress
`GatewayClient` whose compression fans out across worker processes
behind a bounded queue, a length-prefixed frame protocol with raw
passthrough for incompressible frames, and a per-stream delivery
receipt (frame count, byte count, CRC) verified end-to-end.

Run:  python examples/network_gateway.py
"""

import asyncio

from repro.datasets import generate
from repro.service import FRAME_HEADER_SIZE, GatewayClient, GatewayServer, Metrics

LINK_BYTES_PER_S = 1e9 / 8  # a 2011-era 1 Gb/s WAN link
BUFFER_BYTES = 64 * 1024
N_BUFFERS = 8
WORKERS = 2
QUEUE_DEPTH = 4


async def run_pair() -> None:
    metrics = Metrics()
    delivered: list[tuple[int, bytes]] = []

    async def deliver(stream_id: int, seq: int, data: bytes) -> None:
        delivered.append((seq, data))

    # traffic mix: source trees, map tiles, word lists, tarballs…
    kinds = ["cfiles", "demap", "kernel_tarball", "dictionary"]
    buffers = [generate(kinds[i % 4], BUFFER_BYTES, seed=1000 + i)
               for i in range(N_BUFFERS)]

    print(f"pushing {N_BUFFERS} x {BUFFER_BYTES // 1024} KiB buffers "
          f"through a localhost gateway pair "
          f"({WORKERS} compression workers, queue depth {QUEUE_DEPTH})\n")

    async with GatewayServer(metrics=metrics, deliver=deliver) as server:
        client = GatewayClient(port=server.port, workers=WORKERS,
                               queue_depth=QUEUE_DEPTH, metrics=metrics)
        async with client:
            ack = await client.send_stream(buffers, stream_id=1)
        await server.close()

    # the §III guarantee: bit-exact, in-order delivery
    assert [seq for seq, _ in delivered] == list(range(N_BUFFERS))
    assert [data for _, data in delivered] == buffers
    assert ack.matches(buffers)

    snap = metrics.snapshot()
    counters = snap["counters"]
    sent = counters["ingress.bytes_in"]
    wire = counters["ingress.bytes_out"]
    per_frame = wire / N_BUFFERS - FRAME_HEADER_SIZE

    for i, data in enumerate(buffers):
        print(f"buffer {i} ({kinds[i % 4]:<14}): {len(data) >> 10} KiB "
              f"(avg wire frame {per_frame / 1024:.1f} KiB)")

    raw_link_s = sent / LINK_BYTES_PER_S
    comp_link_s = wire / LINK_BYTES_PER_S
    compress_s = snap["histograms"]["ingress.stage_wait_seconds"]["sum"]

    print()
    print(f"bytes on the wire: {sent:,} -> {wire:,} "
          f"(ratio {wire / sent:.1%}, {counters.get('ingress.raw_frames', 0)} "
          f"raw-passthrough frames)")
    print(f"delivery receipt:  {ack.frames} frames / {ack.bytes:,} bytes, "
          f"CRC verified end-to-end")
    print(f"link time:   {raw_link_s * 1000:7.2f} ms raw "
          f"-> {comp_link_s * 1000:7.2f} ms compressed")
    print(f"gateway CPU: {compress_s * 1000:7.2f} ms wall across "
          f"{WORKERS} workers (wait through the bounded queue)")
    saved = raw_link_s - comp_link_s - compress_s / WORKERS
    verdict = "WORTH IT" if saved > 0 else "not worth it at this link speed"
    print(f"net effect:  {saved * 1000:+7.2f} ms -> {verdict}")
    print()
    print(f"pipeline high-water marks: ingress queue "
          f"{int(metrics.gauge_max('ingress.queue_depth'))}/{QUEUE_DEPTH}, "
          f"egress queue {int(metrics.gauge_max('egress.queue_depth'))}")
    print("note: pure-Python encoding is orders slower than the paper's")
    print("GPU, so a 1 Gb/s link wins here; the frames, backpressure, and")
    print("receipts are what production would keep while swapping the codec.")


def main() -> None:
    asyncio.run(run_pair())


if __name__ == "__main__":
    main()
