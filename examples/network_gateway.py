#!/usr/bin/env python3
"""The paper's motivating scenario: compressing gateway pairs.

"From an application perspective, such as in a network application, the
input data resides in a memory buffer that needs to be compressed at
one gateway of the network and decompressed at the egress gateway, so
the data looks the same going in as coming out." (§III)

Simulates a flow of packet buffers through an ingress gateway (GPU
compression), a bandwidth-limited link, and an egress gateway (GPU
decompression) — and reports how much link time compression bought at
what computational cost.

Run:  python examples/network_gateway.py
"""

from repro import CompressionParams, gpu_compress, gpu_decompress
from repro.datasets import generate

LINK_BYTES_PER_S = 1e9 / 8  # a 2011-era 1 Gb/s WAN link
BUFFER_BYTES = 512 * 1024
N_BUFFERS = 8


def main() -> None:
    params = CompressionParams(version=2)
    sent = received = 0
    raw_link_s = comp_link_s = gpu_s = 0.0

    print(f"pushing {N_BUFFERS} x {BUFFER_BYTES // 1024} KiB buffers "
          f"through a {LINK_BYTES_PER_S * 8 / 1e9:.0f} Gb/s link\n")
    for i in range(N_BUFFERS):
        # traffic mix: source trees, map tiles, logs…
        kind = ["cfiles", "demap", "kernel_tarball", "dictionary"][i % 4]
        payload = generate(kind, BUFFER_BYTES, seed=1000 + i)

        # ingress gateway
        wire = gpu_compress(payload, params)
        # egress gateway
        out = gpu_decompress(wire.data)
        assert out.data == payload, "gateway corrupted a buffer"

        sent += len(payload)
        received += wire.compressed_size
        raw_link_s += len(payload) / LINK_BYTES_PER_S
        comp_link_s += wire.compressed_size / LINK_BYTES_PER_S
        gpu_s += wire.modeled_seconds + out.modeled_seconds

        print(f"buffer {i} ({kind:<14}): {len(payload) >> 10} KiB -> "
              f"{wire.compressed_size >> 10} KiB  (ratio {wire.ratio:.1%})")

    print()
    print(f"bytes on the wire: {sent:,} -> {received:,}")
    print(f"link time:   {raw_link_s * 1000:7.2f} ms raw "
          f"-> {comp_link_s * 1000:7.2f} ms compressed")
    print(f"GPU time:    {gpu_s * 1000:7.2f} ms (modeled, both gateways)")
    saved = raw_link_s - comp_link_s - gpu_s
    verdict = "WORTH IT" if saved > 0 else "not worth it at this link speed"
    print(f"net effect:  {saved * 1000:+7.2f} ms -> {verdict}")
    print()
    print("note: half-megabyte buffers underutilize the simulated GTX 480")
    print("(one decode block per 128 chunks -> one SM busy); the paper")
    print("streams 128 MB buffers, where the per-buffer overheads vanish —")
    print("and the GPU/link tradeoff flips on bandwidth-limited WAN links.")


if __name__ == "__main__":
    main()
