#!/usr/bin/env python3
"""Quickstart: the paper's in-memory compression API (Figure 2).

Compress a buffer on the (simulated) GTX 480 with both CULZSS versions,
inspect ratio and the modeled execution timeline, and round-trip it.

Run:  python examples/quickstart.py
"""

from repro import CompressionParams, gpu_compress, gpu_decompress, get_library
from repro.datasets import generate


def main() -> None:
    # The library "detects GPUs and determines capabilities" (§III).
    lib = get_library()
    print("detected device:", lib.capabilities()["device"])
    print()

    # A megabyte of C-source-like data (the paper's first dataset).
    payload = generate("cfiles", 1 << 20)

    for version in (1, 2):
        params = CompressionParams(version=version)
        buf = gpu_compress(payload, params)

        print(f"=== CULZSS Version {version} ===")
        print(f"input:       {len(payload):,} bytes")
        print(f"compressed:  {buf.compressed_size:,} bytes "
              f"(ratio {buf.ratio:.1%}, smaller is better)")
        print(f"modeled GTX-480 time: {buf.modeled_seconds * 1000:.2f} ms")
        print(buf.profile.report())

        restored = gpu_decompress(buf.data)
        assert restored.data == payload, "round trip failed!"
        print(f"decompressed OK "
              f"(modeled {restored.modeled_seconds * 1000:.2f} ms)")
        print()

    print("Rule of thumb from the paper (§V): version 2 for data that is")
    print("~50% compressible or worse; version 1 for highly compressible data.")


if __name__ == "__main__":
    main()
