#!/usr/bin/env python3
"""Observability tour — metrics, spans, and exporters end to end.

Walks the :mod:`repro.obs` subsystem through one traced workload:

1. compress + decompress a buffer under a trace id, with the engine
   sharding across two workers so spans nest three layers deep
   (gateway frame -> engine shard -> encoder stage);
2. print the metric registry the run filled in — matcher probe
   counters, per-stage encode timings, container CRC events, engine
   shard stats — in the pretty table format;
3. export the same snapshot as Prometheus text (what ``culzss serve
   --metrics-port`` scrapes) and write the span log as a chrome-trace
   JSON loadable in chrome://tracing or https://ui.perfetto.dev;
4. demonstrate the worker-delta flow: what a pool worker ships home
   and how the parent folds it in.

Run:  python examples/observability.py
"""

import tempfile
from pathlib import Path

from repro import obs
from repro.datasets import generate
from repro.obs import trace
from repro.service.pipeline import decode_payload, encode_payload

SIZE = 768 * 1024  # past the engine's 128 KiB parallel threshold


def main() -> None:
    obs.reset()  # a clean registry so the printout is this run only

    # -- 1. one traced round trip ------------------------------------
    data = generate("cfiles", SIZE, seed=42)
    tid = trace.new_trace_id()
    flags, payload = encode_payload(data, version=2, workers=2,
                                    trace_id=tid)
    out = decode_payload(flags, payload, workers=2, trace_id=tid)
    assert out == data
    print(f"round trip: {len(data)} -> {len(payload)} bytes "
          f"(ratio {len(payload) / len(data):.4f}) under trace {tid:#x}\n")

    # -- 2. the registry the instrumented stack filled in ------------
    snapshot = obs.get_registry().snapshot()
    print(obs.format_pretty(snapshot))

    # -- 3. exporters ------------------------------------------------
    prom = obs.prometheus_text(snapshot)
    print("\nPrometheus exposition (first lines):")
    for line in prom.splitlines()[:6]:
        print(f"  {line}")
    print(f"  ... {len(prom.splitlines())} lines total")

    spans = trace.spans()
    with tempfile.TemporaryDirectory() as tmp:
        path = obs.write_chrome_trace(Path(tmp) / "roundtrip.trace.json",
                                      spans)
        print(f"\nchrome trace: {len(spans)} spans, "
              f"{path.stat().st_size} bytes "
              f"(load in chrome://tracing or ui.perfetto.dev)")
    depth = {s.span_id: s for s in spans}

    def layers(s) -> int:
        n = 1
        while s.parent_id in depth:
            s, n = depth[s.parent_id], n + 1
        return n

    print(f"deepest nesting: {max(map(layers, spans))} layers "
          f"({', '.join(sorted({s.name for s in spans}))})")

    # -- 4. the cross-process delta flow -----------------------------
    # A pool worker ends its job with obs.delta() — metric diffs plus
    # its drained span ring — and ships the dict home pickled; the
    # parent folds it in.  Same-process deltas are recognised by pid
    # and skipped, so routing every executor through this path is safe.
    delta = obs.delta()
    print(f"\nworker delta: {sum(delta['metrics']['counters'].values())} "
          f"counter increments, {len(delta['spans'])} spans")
    obs.merge_delta(delta)  # same pid: counters no-op, spans restored
    assert len(trace.spans()) == len(delta["spans"])
    print("merged back: same-pid counters skipped, span ring restored")


if __name__ == "__main__":
    main()
