#!/usr/bin/env python3
"""Parameter tuning — the configurability the paper's §VII asks for.

"Another improvement can be a more detailed tuning configuration API
that gives the ability to adjust the program for the needs of the user.
If better compression ratio is required, an adjustable configuration of
increased window size can help."

Sweeps the V2 window size and threads-per-block on a workload of your
choosing and prints the modeled time / measured ratio frontier so you
can pick an operating point.

Run:  python examples/tuning_sweep.py [dataset]
"""

import sys

from repro import CompressionParams, V2Compressor
from repro.datasets import available_datasets, generate
from repro.model.calibration import default_calibration
from repro.model.gpu import scale_to_paper

SIZE = 512 * 1024


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "cfiles"
    if name not in available_datasets():
        raise SystemExit(f"unknown dataset {name!r}; "
                         f"pick one of {available_datasets()}")
    data = generate(name, SIZE)
    cal = default_calibration()

    print(f"V2 window sweep on {name!r} "
          f"(modeled seconds at 128 MB / measured ratio)")
    print(f"{'window':>8} {'time':>9} {'ratio':>9}")
    for window in (32, 64, 128, 256, 512):
        params = CompressionParams(version=2, window=window)
        compressor = V2Compressor(params)
        result = compressor.compress(data)
        seconds = scale_to_paper(
            compressor.profile(result, cal).total_seconds, SIZE)
        print(f"{window:>8} {seconds:>8.2f}s {result.stats.ratio:>8.1%}")

    print()
    print("threads-per-block sweep (window 128)")
    print(f"{'threads':>8} {'time':>9}")
    base = V2Compressor(CompressionParams(version=2))
    result = base.compress(data)
    for threads in (32, 64, 128, 256, 512):
        compressor = V2Compressor(
            CompressionParams(version=2, threads_per_block=threads))
        seconds = scale_to_paper(
            compressor.profile(result, cal).total_seconds, SIZE)
        print(f"{threads:>8} {seconds:>8.2f}s")
    print()
    print("the paper's choices — window 128, 128 threads/block — sit on "
          "the knee of both curves (§III.D)")


if __name__ == "__main__":
    main()
