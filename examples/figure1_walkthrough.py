#!/usr/bin/env python3
"""Figure 1 walkthrough — the paper's worked LZSS encoding example.

Re-encodes the figure's text with the serial coder and prints the
token stream the way the figure annotates it: literals pass through,
repeats become (offset, length) pairs.

Run:  python examples/figure1_walkthrough.py
"""

from repro.lzss import SERIAL
from repro.lzss.reference import reference_tokenize

TEXT = (
    b"I meant what I said and I said what I meant. "
    b"From there to here from here to there. "
    b"I said what I meant"
)


def main() -> None:
    print("input:", TEXT.decode())
    print(f"({len(TEXT)} characters)\n")

    tokens = reference_tokenize(TEXT, SERIAL)
    pos = 0
    rendered = []
    for token in tokens:
        if token[0] == "lit":
            rendered.append(chr(token[1]))
            pos += 1
        else:
            _, dist, length = token
            rendered.append(f"({pos - dist},{length})")
            pos += length
    print("encoded (pairs shown as (source offset, length), "
          "as in the figure):")
    print("".join(rendered))
    print()

    n_lit = sum(1 for t in tokens if t[0] == "lit")
    n_pair = len(tokens) - n_lit
    figure_units = n_lit + 2 * n_pair
    bits = n_lit * SERIAL.literal_bits + n_pair * SERIAL.pair_bits
    print(f"tokens: {n_lit} literals + {n_pair} pairs")
    print(f"figure-style character count: {len(TEXT)} -> {figure_units} "
          f"(the paper's example reports 102 -> 56)")
    print(f"actual bits: {len(TEXT) * 8} -> {bits} "
          f"({bits / (len(TEXT) * 8):.1%})")


if __name__ == "__main__":
    main()
