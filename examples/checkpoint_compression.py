#!/usr/bin/env python3
"""HPC checkpoint compression — the paper's cluster use case.

"Many applications write to a file every few timesteps for subsequent
visualization.  Other long-running applications checkpoint their state
to disk for restarting." (§VI)

Simulates a little stencil application that checkpoints its state every
few timesteps, picks the CULZSS version per checkpoint with the §V
rule of thumb (probe compressibility on a sample), and compares the
modeled checkpoint cost against writing raw state.

Run:  python examples/checkpoint_compression.py
"""

import numpy as np

from repro import CompressionParams, gpu_compress
from repro.lzss import SERIAL, encode

DISK_BYTES_PER_S = 120e6  # a 2011 HDD
GRID = 512
STEPS = 4


def stencil_step(field: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """A diffusion step plus sparse injected noise (quantized state)."""
    blurred = (field
               + np.roll(field, 1, 0) + np.roll(field, -1, 0)
               + np.roll(field, 1, 1) + np.roll(field, -1, 1)) / 5.0
    noise = rng.random(field.shape) < 0.002
    blurred[noise] = rng.integers(0, 256, noise.sum())
    return blurred


def checkpoint_bytes(field: np.ndarray) -> bytes:
    # checkpoint the quantized field (what a viz pipeline would dump)
    return field.astype(np.uint8).tobytes()


def choose_version(sample: bytes) -> int:
    """§V's rule: probe the serial ratio; ≲50 % compressible → V2."""
    ratio = encode(sample, SERIAL).stats.ratio
    return 2 if ratio > 0.35 else 1


def main() -> None:
    rng = np.random.default_rng(11)
    field = np.zeros((GRID, GRID))
    field[GRID // 4: GRID // 2, GRID // 4: GRID // 2] = 255.0

    raw_disk_s = comp_total_s = 0.0
    for step in range(STEPS):
        for _ in range(3):
            field = stencil_step(field, rng)
        state = checkpoint_bytes(field)

        version = choose_version(state[: 64 * 1024])
        buf = gpu_compress(state, CompressionParams(version=version))

        raw_s = len(state) / DISK_BYTES_PER_S
        comp_s = buf.modeled_seconds + buf.compressed_size / DISK_BYTES_PER_S
        raw_disk_s += raw_s
        comp_total_s += comp_s
        print(f"checkpoint {step}: {len(state) >> 10} KiB, "
              f"V{version} ratio {buf.ratio:.1%}; disk {raw_s * 1000:.1f} ms "
              f"raw vs {comp_s * 1000:.1f} ms compressed(+GPU)")

    print()
    print(f"totals: raw {raw_disk_s * 1000:.1f} ms; "
          f"compressed {comp_total_s * 1000:.1f} ms "
          f"({raw_disk_s / comp_total_s:.2f}x)")


if __name__ == "__main__":
    main()
